"""Table VII — per-stage runtimes vs SRA size.

Sweeps the Special Rows Area budget on the scaled chromosome comparison
and checks the mechanisms behind the paper's trends:

* Stage 1's flushed bytes grow with the SRA (its runtime overhead is the
  flush traffic, ~13 s/GB in the device model);
* Stage 2's processed cells *fall* as the SRA grows (narrower bands);
* Stage 4's work falls steeply with more crosspoints from stages 2-3;
* Stages 5 and 6 are constant.

The modeled column reproduces the non-monotone Stage-3 row: a bigger SRA
means narrower partitions, which violate the minimum size requirement and
shrink B3 (Table VIII), derating the device.
"""

from __future__ import annotations

import pytest

from repro.sequences import get_entry

from benchmarks.conftest import emit, pipeline_config
from repro.core import CUDAlign


def test_table7_sra_sweep(benchmark, scale):
    entry = get_entry("32799Kx46944K")
    s0, s1 = entry.build(scale=scale, seed=0)
    sweeps = {}

    def run_all():
        for rows in (0, 2, 4, 8, 16, 32):
            config = pipeline_config(len(s1), sra_rows=rows,
                                     max_partition_size=16)
            sweeps[rows] = CUDAlign(config).run(s0, s1, visualize=False)
        return len(sweeps)

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    lines = [
        f"Table VII analogue — SRA sweep on {entry.key} (scale 1/{scale}, "
        f"{len(s0):,} x {len(s1):,})",
        "",
        f"{'SRA rows':>8} {'flushed B':>10} {'cells2':>12} {'cells3':>12} "
        f"{'cells4':>12} {'wall2 s':>8} {'wall4 s':>8} {'wall5 s':>8} "
        f"{'wall6 s':>8}",
    ]
    series = []
    for rows, result in sweeps.items():
        c2 = result.stage2.cells
        c3 = result.stage3.cells if result.stage3 else 0
        c4 = result.stage4.cells if result.stage4 else 0
        w = result.stage_wall_seconds()
        series.append((rows, c2, c4, result.stage1.flushed_bytes))
        lines.append(
            f"{rows:>8} {result.stage1.flushed_bytes:>10,} {c2:>12,} "
            f"{c3:>12,} {c4:>12,} {w['2']:>8.3f} {w['4']:>8.3f} "
            f"{w['5']:>8.3f} {w['6']:>8.3f}")
        assert result.best_score == sweeps[0].best_score
    # Trends (paper Table VII): stage 2 and stage 4 work fall with SRA.
    rows_, c2s, c4s, flushed = zip(*series)
    assert c2s[-1] < c2s[1], "stage 2 cells must fall as SRA grows"
    assert c4s[-1] < c4s[0], "stage 4 cells must fall as SRA grows"
    assert flushed[-1] > flushed[1] > flushed[0] == 0
    # Stage 5/6 constant-ish.
    walls5 = [r.stage_wall_seconds()["5"] for r in sweeps.values()]
    assert max(walls5) < 10 * max(min(walls5), 1e-3)
    lines += ["", "trends reproduced: flush bytes up, stage-2/4 work down, "
              "stage 5/6 constant (paper Table VII)"]

    # Paper-scale modeled rows (the analytic Stage 2-4 estimates).
    from repro.gpusim import GTX_285, PENTIUM_DUALCORE, KernelGrid
    from repro.gpusim.paperscale import CHROMOSOME_GEOMETRY, estimate
    grid = KernelGrid(60, 128, 4)
    paper_rows = {10: (1721, 126, 8211), 20: (1015, 111, 2098),
                  30: (851, 144, 974), 40: (818, 187, 525),
                  50: (805, 236, 376)}
    lines += ["", "modeled at paper scale (33M x 47M; paper values right):",
              f"{'SRA':>5} {'stage2 s':>16} {'stage3 s':>14} {'stage4 s':>16}"]
    stage3_series = []
    for gb, (p2, p3, p4) in paper_rows.items():
        e = estimate(CHROMOSOME_GEOMETRY, gb * 10**9, grid2=grid, grid3=grid,
                     device=GTX_285, host=PENTIUM_DUALCORE)
        stage3_series.append(e.seconds3)
        lines.append(f"{gb:>4}G {e.seconds2:>8,.0f} / {p2:<6,} "
                     f"{e.seconds3:>6,.0f} / {p3:<5,} "
                     f"{e.seconds4:>8,.0f} / {p4:<6,}")
        assert e.seconds2 == pytest.approx(p2, rel=0.05), gb
    # The paper's signature non-monotone Stage 3 emerges from B3 collapse.
    assert stage3_series[-1] > min(stage3_series)
    lines += ["", "stage 3 dips then rises with SRA (B3 collapse) — the "
              "paper's signature Table VII effect, reproduced analytically"]
    emit("table7_sra_sweep", lines)
