"""Table VIII — execution statistics vs SRA size.

The sweep of Table VII, reported as the paper's statistics rows: B_k,
Cells_k, |L_k|, the largest partition dimensions after Stage 3, and the
simulated VRAM per stage.  Also verifies the B3 law against the paper's
own column using the published W_max values.
"""

from __future__ import annotations

from repro.core import CUDAlign, CrosspointChain
from repro.gpusim import GTX_285, effective_blocks
from repro.sequences import get_entry

from benchmarks.conftest import emit, pipeline_config

#: W_max -> B3 from the paper's Table VIII (T3 = 128, GTX 285).
PAPER_B3 = [(56320, 60), (14336, 30), (6656, 26), (3684, 14), (2624, 10)]


def test_table8_statistics(benchmark, scale):
    entry = get_entry("32799Kx46944K")
    s0, s1 = entry.build(scale=scale, seed=0)
    sweeps = {}

    def run_all():
        for rows in (2, 4, 8, 16, 32):
            config = pipeline_config(len(s1), sra_rows=rows,
                                     max_partition_size=16)
            sweeps[rows] = (config, CUDAlign(config).run(s0, s1,
                                                         visualize=False))
        return len(sweeps)

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    lines = [
        f"Table VIII analogue — execution statistics ({entry.key}, "
        f"scale 1/{scale})",
        "",
        f"{'stat':<12}" + "".join(f" {f'SRA={r}r':>12}" for r in sweeps),
    ]

    def row(name, fn):
        lines.append(f"{name:<12}" + "".join(
            f" {fn(cfg, res):>12}" for cfg, res in sweeps.values()))

    row("Cells_1", lambda c, r: f"{r.stage1.cells:.2e}")
    row("Cells_2", lambda c, r: f"{r.stage2.cells:.2e}")
    row("Cells_3", lambda c, r: f"{r.stage3.cells:.2e}" if r.stage3 else "-")
    row("|L_2|", lambda c, r: len(r.stage2.crosspoints))
    row("|L_3|", lambda c, r: len(r.stage3.crosspoints) if r.stage3 else "-")
    row("B_3", lambda c, r: r.stage3.effective_blocks if r.stage3 else "-")

    def hmax(c, r):
        chain = CrosspointChain((r.stage3 or r.stage2).crosspoints)
        return max(p.height for p in chain.partitions())

    def wmax(c, r):
        chain = CrosspointChain((r.stage3 or r.stage2).crosspoints)
        return max(p.width for p in chain.partitions())

    row("H_max", hmax)
    row("W_max", wmax)
    row("VRAM_1 KB", lambda c, r: f"{r.stage1.vram_bytes / 1e3:.0f}")
    row("VRAM_2 KB", lambda c, r: f"{r.stage2.vram_bytes / 1e3:.0f}")

    # Trends of the paper's table: more SRA => more crosspoints, smaller
    # partitions, fewer Stage-2 cells.
    runs = list(sweeps.values())
    l2 = [len(r.stage2.crosspoints) for _, r in runs]
    assert l2 == sorted(l2), "|L2| must grow with SRA"
    c2 = [r.stage2.cells for _, r in runs]
    assert c2[-1] < c2[0], "Cells_2 must fall with SRA"
    hs = [hmax(c, r) for c, r in runs]
    assert hs[-1] <= hs[0], "H_max must fall with SRA"

    lines += ["", "B3 law vs the paper's own column:"]
    for w, b3 in PAPER_B3:
        got = effective_blocks(60, 128, w, GTX_285)
        lines.append(f"  W_max={w:>6}: paper B3={b3:>3}  law B3={got:>3}")
        assert got == b3
    emit("table8_statistics", lines)
