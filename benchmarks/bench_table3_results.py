"""Table III — Stage-1 results for every catalog pair.

Runs the full pipeline on each scaled comparison and reports score, end
and start positions, alignment length and gap count — the same columns as
the paper.  Absolute numbers scale with the synthetic inputs; the *regime*
must match the paper's rows: near-full-span alignments for the homologous
pairs, tiny local hits for the unrelated ones.
"""

from __future__ import annotations

import pytest

from repro.sequences import CATALOG

from benchmarks.conftest import emit, run_entry


def test_table3_results(benchmark, scale):
    rows = []
    results = {}

    def run_all():
        for entry in CATALOG:
            results[entry.key] = run_entry(entry, scale)
        return len(results)

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    lines = [
        f"Table III — results per comparison (scale 1/{scale})",
        "",
        f"{'comparison':<16} {'cells':>10} {'score':>8} {'end':>16} "
        f"{'start':>16} {'length':>8} {'gaps':>6}",
    ]
    for entry in CATALOG:
        s0, s1, config, result = results[entry.key]
        if result.alignment is None:
            end = start = "-"
            length = gaps = 0
        else:
            end = str(result.alignment.end)
            start = str(result.alignment.start)
            length = result.alignment_length
            gaps = result.gap_columns
        lines.append(
            f"{entry.key:<16} {result.matrix_cells:>10.2e} "
            f"{result.best_score:>8,} {end:>16} {start:>16} "
            f"{length:>8,} {gaps:>6,}")
        # Regime checks against the paper's Table III shape.
        if entry.regime in ("near-identical", "prefix-homology"):
            assert length > 0.8 * min(len(s0), len(s1)), entry.key
        elif entry.regime == "short-hit":
            assert length < 0.3 * min(len(s0), len(s1)), entry.key
        if result.alignment is not None:
            assert result.alignment.score(s0, s1, config.scheme) == \
                result.best_score
    lines += ["", "paper regimes reproduced: huge alignments for 5227Kx5229K "
              "and 32799Kx46944K, short hits elsewhere"]
    emit("table3_results", lines)
