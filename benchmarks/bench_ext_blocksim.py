"""Extension — block-scheduled kernel simulation cross-validation.

Executes Stage 1 on the literal CUDAlign grid schedule (cells delegation,
buses, phase division) and cross-validates the analytic substrate:
diagonal counts, occupancy and bus traffic must match the formulas the
performance model is built on, and the numerics must be bit-identical to
the monolithic kernel.
"""

from __future__ import annotations

import numpy as np

from repro.align.rowscan import RowSweeper
from repro.align.scoring import PAPER_SCHEME
from repro.gpusim import GTX_285, KernelGrid, SweepGeometry
from repro.gpusim.blocksim import simulate_stage1
from repro.sequences.synth import homologous_pair

from benchmarks.conftest import emit

GRID = KernelGrid(blocks=8, threads=16, alpha=2)  # block rows of 32


def test_ext_blocksim_crossvalidation(benchmark):
    rng = np.random.default_rng(17)
    s0, s1 = homologous_pair(1024, rng)
    sim = benchmark.pedantic(
        simulate_stage1, args=(s0, s1, PAPER_SCHEME, GRID, GTX_285),
        rounds=2, iterations=1)
    mono = RowSweeper(s0.codes, s1.codes, PAPER_SCHEME, local=True,
                      track_best=True).run()
    grid = GRID.shrink_to(len(s1), GTX_285)
    geo = SweepGeometry(len(s0), len(s1), grid)

    assert sim.best == mono.best
    assert sim.external_diagonals == geo.external_diagonals
    # Bus traffic per full sweep: each tile exchanges one horizontal
    # segment and one vertical edge; totals must be within the analytic
    # envelope (the formula counts per-block-row rows; the simulation
    # counts per-tile segments of the same rows).
    assert sim.horizontal_bus_bytes >= geo.horizontal_bus_bytes

    lines = [
        "Extension — block-level kernel simulation (cells delegation)",
        "",
        f"matrix: {len(s0):,} x {len(s1):,}   grid: B={grid.blocks} "
        f"T={grid.threads} alpha={grid.alpha}",
        f"best score: sim {sim.best} == monolithic {mono.best}",
        f"external diagonals: {sim.external_diagonals} "
        f"(= R + B - 1 = {geo.block_row_count} + {grid.blocks} - 1)",
        f"mean occupancy: {sim.mean_occupancy:.2f} of {grid.blocks} blocks "
        f"({100 * sim.mean_occupancy / grid.blocks:.0f}% — full except "
        f"fill/drain)",
        f"bus traffic: horizontal {sim.horizontal_bus_bytes:,} B, "
        f"vertical {sim.vertical_bus_bytes:,} B",
        f"phase split: short {sim.short_phase_cells:,} cells, "
        f"long {sim.long_phase_cells:,} cells",
    ]
    assert sim.mean_occupancy > 0.7 * grid.blocks
    emit("ext_blocksim", lines)
