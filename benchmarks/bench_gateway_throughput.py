"""Gateway overhead — HTTP rps, time-to-first-event, e2e latency.

Runs a real :class:`~repro.gateway.GatewayRunner` on an ephemeral port
and measures the front door itself, not the alignments behind it:

* **submit rps** — POST /v1/jobs throughput while the dispatcher is
  paused (pure validate + journal + 201, no compute in the way);
* **status rps** — GET /v1/jobs/{id} snapshot throughput;
* **time-to-first-event** — POST returning to the first SSE byte of
  that job's stream;
* **e2e latency** — submit -> result retrieved, for real (tiny) catalog
  jobs at queue depths 1, 8 and 64.  Distinct seeds per job keep the
  result cache out of the measurement.

Writes ``benchmarks/out/gateway_throughput.txt`` (the rendered table)
and ``benchmarks/out/BENCH_gateway.json`` (the raw numbers).
"""

from __future__ import annotations

import http.client
import json
import time

from repro.gateway import GatewayPolicy, GatewayRunner, ServiceDispatcher

from benchmarks.conftest import OUT_DIR, bench_scale, emit

QUEUE_DEPTHS = (1, 8, 64)
SUBMIT_COUNT = 200
STATUS_COUNT = 500
FIRST_EVENT_SAMPLES = 20


def _policy() -> GatewayPolicy:
    # Admission wide open: this suite measures mechanism, not policy.
    return GatewayPolicy(max_active_per_tenant=10**6,
                         rate_per_tenant=10**6, burst_per_tenant=10**6,
                         max_queue_depth=10**6)


def _connect(port: int) -> http.client.HTTPConnection:
    return http.client.HTTPConnection("127.0.0.1", port, timeout=60)


def _request(conn, method: str, path: str, payload=None) -> dict:
    body = json.dumps(payload).encode() if payload is not None else None
    conn.request(method, path, body=body,
                 headers={"Content-Type": "application/json"})
    response = conn.getresponse()
    data = response.read()
    assert response.status in (200, 201), (response.status, data)
    return json.loads(data)


def _bench_submit_rps(port: int, scale: int) -> float:
    """Paused dispatcher: nothing runs, so this is pure gateway work."""
    conn = _connect(port)
    tick = time.monotonic()
    for index in range(SUBMIT_COUNT):
        _request(conn, "POST", "/v1/jobs",
                 {"job_id": f"rps-{index}", "catalog": "162Kx172K",
                  "scale": scale, "seed": index, "block_rows": 32})
    elapsed = time.monotonic() - tick
    conn.close()
    return SUBMIT_COUNT / elapsed


def _bench_status_rps(port: int) -> float:
    conn = _connect(port)
    tick = time.monotonic()
    for index in range(STATUS_COUNT):
        _request(conn, "GET", f"/v1/jobs/rps-{index % SUBMIT_COUNT}")
    elapsed = time.monotonic() - tick
    conn.close()
    return STATUS_COUNT / elapsed


def _bench_first_event(port: int) -> float:
    """Median submit -> first SSE byte, against already-queued jobs."""
    samples = []
    for index in range(FIRST_EVENT_SAMPLES):
        conn = _connect(port)
        tick = time.monotonic()
        conn.request("GET", f"/v1/jobs/rps-{index}/events")
        response = conn.getresponse()
        assert response.status == 200
        response.read(1)               # first byte of the stream
        samples.append(time.monotonic() - tick)
        conn.close()
    samples.sort()
    return samples[len(samples) // 2]


def _bench_e2e(port: int, depth: int, scale: int, offset: int) -> dict:
    """Submit ``depth`` distinct jobs at once; wait for every result."""
    conn = _connect(port)
    job_ids = []
    tick = time.monotonic()
    for index in range(depth):
        seed = offset + index
        _request(conn, "POST", "/v1/jobs",
                 {"job_id": f"e2e-{seed}", "catalog": "162Kx172K",
                  "scale": scale, "seed": seed, "block_rows": 32})
        job_ids.append(f"e2e-{seed}")
    submitted = time.monotonic() - tick
    pending = set(job_ids)
    first_done = None
    while pending:
        for job_id in sorted(pending):
            snapshot = _request(conn, "GET", f"/v1/jobs/{job_id}")
            if snapshot["state"] in ("succeeded", "cached"):
                body = _request(conn, "GET", f"/v1/jobs/{job_id}/result")
                assert body["result"]["best_score"] > 0
                pending.discard(job_id)
                if first_done is None:
                    first_done = time.monotonic() - tick
        if pending:
            time.sleep(0.01)
    total = time.monotonic() - tick
    conn.close()
    return {"depth": depth, "submit_seconds": submitted,
            "first_result_seconds": first_done,
            "total_seconds": total,
            "jobs_per_second": depth / total}


def test_gateway_throughput(tmp_path):
    scale = bench_scale()
    dispatcher = ServiceDispatcher(str(tmp_path / "gw"), workers=2,
                                   poll_seconds=0.005)
    runner = GatewayRunner(dispatcher, _policy(), port=0).start()
    try:
        port = runner.port
        # Fail fast on an unhealthy gateway — benchmarking a dead pump
        # produces numbers that measure nothing.
        conn = _connect(port)
        conn.request("GET", "/v1/healthz")
        response = conn.getresponse()
        health = json.loads(response.read())
        conn.close()
        assert response.status == 200 and health["status"] != "unhealthy", \
            f"gateway unhealthy before benchmarking: {health}"
        dispatcher.pause()
        submit_rps = _bench_submit_rps(port, scale)
        status_rps = _bench_status_rps(port)
        first_event = _bench_first_event(port)
        # Drain the paused backlog before the e2e runs.
        dispatcher.resume()
        conn = _connect(port)
        while True:
            listing = _request(conn, "GET", "/v1/jobs")
            if all(j["state"] in ("succeeded", "cached", "failed")
                   for j in listing["jobs"]):
                break
            time.sleep(0.05)
        conn.close()

        e2e = [_bench_e2e(port, depth, scale, offset=1000 * (i + 1))
               for i, depth in enumerate(QUEUE_DEPTHS)]
    finally:
        runner.stop()

    lines = [
        f"Gateway overhead — scale 1/{scale}, 2 workers, ephemeral port",
        "",
        f"submit rps (paused dispatcher): {submit_rps:>8.0f}",
        f"status rps:                     {status_rps:>8.0f}",
        f"time to first SSE event:        {first_event * 1000:>8.2f} ms",
        "",
        f"{'depth':>6} {'submit s':>9} {'first s':>8} {'total s':>8} "
        f"{'jobs/s':>7}",
    ]
    for row in e2e:
        lines.append(f"{row['depth']:>6} {row['submit_seconds']:>9.3f} "
                     f"{row['first_result_seconds']:>8.3f} "
                     f"{row['total_seconds']:>8.3f} "
                     f"{row['jobs_per_second']:>7.2f}")
    emit("gateway_throughput", lines)

    payload = {
        "scale": scale,
        "submit_rps": submit_rps,
        "status_rps": status_rps,
        "time_to_first_event_seconds": first_event,
        "e2e": e2e,
    }
    (OUT_DIR / "BENCH_gateway.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n")
