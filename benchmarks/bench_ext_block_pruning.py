"""Extension — block pruning (the optimization the paper's conclusion
points to; shipped as CUDAlign 3.0 in the lineage).

Measures the pruned tile fraction and cell savings across the catalog's
regimes.  The lineage reports ~50% of the matrix pruned on similar
chromosome pairs; the score must be bit-identical with pruning on or off.
"""

from __future__ import annotations

from repro.align.scoring import PAPER_SCHEME
from repro.gpusim import GTX_285, KernelGrid
from repro.gpusim.blocksim import simulate_stage1
from repro.sequences import get_entry

from benchmarks.conftest import emit

GRID = KernelGrid(blocks=4, threads=8, alpha=2)


def test_ext_block_pruning(benchmark, scale):
    cases = ["5227Kx5229K", "32799Kx46944K", "7146Kx5227K"]
    rows = []

    def run_all():
        out = []
        for key in cases:
            s0, s1 = get_entry(key).build(scale=scale, seed=0)
            plain = simulate_stage1(s0, s1, PAPER_SCHEME, GRID, GTX_285)
            pruned = simulate_stage1(s0, s1, PAPER_SCHEME, GRID, GTX_285,
                                     prune=True)
            out.append((key, plain, pruned))
        return out

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    lines = [
        f"Extension — block pruning (scale 1/{scale})",
        "",
        f"{'comparison':<16} {'regime':<16} {'score':>8} {'pruned tiles':>13} "
        f"{'cells saved':>12}",
    ]
    for key, plain, pruned in rows:
        assert pruned.best == plain.best, key
        saved = 1 - pruned.cells / plain.cells
        lines.append(
            f"{key:<16} {get_entry(key).regime:<16} {pruned.best:>8,} "
            f"{pruned.pruned_fraction:>12.1%} {saved:>11.1%}")
    # The near-identical pair must prune far more than the unrelated one.
    by_key = {key: pruned for key, _, pruned in rows}
    assert by_key["5227Kx5229K"].pruned_fraction > \
        by_key["7146Kx5227K"].pruned_fraction + 0.1
    lines += ["", "lineage reference (CUDAlign 3.0): ~50% of blocks pruned "
              "on similar chromosome pairs; unrelated pairs prune little"]
    emit("ext_block_pruning", lines)
