"""Kernel micro-benchmarks — the performance regression suite.

Times every DP engine on fixed workloads so kernel regressions show up in
`pytest-benchmark` diffs: the linear-space row sweep (Stage 1-3 hot
path), the full-matrix base case (Stage 5), one Myers-Miller split
(Stage 4), the tiled sweep (buses/Z-align), and the batch database scan.
MCUPS per kernel is printed for the throughput picture.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from repro.align.full_matrix import global_align, local_align
from repro.align.myers_miller import MMConfig, find_midpoint
from repro.align.rowscan import RowSweeper
from repro.align.scoring import PAPER_SCHEME
from repro.align.tiled import tiled_local_sweep
from repro.baselines import scan_database
from repro.parallel import WavefrontExecutor, make_sweeper
from repro.sequences.synth import homologous_pair, random_dna
from repro.telemetry import MetricsRegistry

from benchmarks.conftest import OUT_DIR, emit

RNG = np.random.default_rng(123)
S0, S1 = homologous_pair(2048, RNG)
RATES: dict[str, float] = {}
#: All kernel numbers flow through the telemetry registry too, so the
#: harness speaks the same metrics dialect as the pipeline; set
#: REPRO_BENCH_METRICS=1 to emit the raw snapshot alongside the table.
METRICS = MetricsRegistry()


def record(benchmark, name: str, cells: int) -> None:
    rate = cells / benchmark.stats.stats.mean / 1e6
    RATES[name] = rate
    slug = "".join(c if c.isalnum() else "_"
                   for c in name.split(" (")[0]).strip("_")
    METRICS.gauge(f"bench.{slug}.mcups").set(rate)
    METRICS.counter("bench.cells").add(cells)
    METRICS.histogram("bench.kernel_seconds").observe(
        benchmark.stats.stats.mean)


def test_kernel_rowscan_local(benchmark):
    def run():
        return RowSweeper(S0.codes, S1.codes, PAPER_SCHEME, local=True,
                          track_best=True).run().best
    benchmark.pedantic(run, rounds=3, iterations=1)
    record(benchmark, "rowscan local (stage 1)", len(S0) * len(S1))


def test_kernel_rowscan_global(benchmark):
    def run():
        return int(RowSweeper(S0.codes, S1.codes, PAPER_SCHEME).run().H[-1])
    benchmark.pedantic(run, rounds=3, iterations=1)
    record(benchmark, "rowscan global (stage 2/3)", len(S0) * len(S1))


def test_kernel_full_matrix(benchmark):
    a, b = S0[:512], S1[:512]

    def run():
        return local_align(a, b, PAPER_SCHEME)[1]
    benchmark.pedantic(run, rounds=3, iterations=1)
    record(benchmark, "full matrix + traceback (stage 5)", 512 * 512)


def test_kernel_mm_split(benchmark):
    goal = global_align(S0.codes, S1.codes, PAPER_SCHEME)[1]

    def run():
        return find_midpoint(S0.codes, S1.codes, PAPER_SCHEME, goal=goal,
                             config=MMConfig(orthogonal=True, strip=128))
    benchmark.pedantic(run, rounds=3, iterations=1)
    record(benchmark, "MM split, orthogonal (stage 4)",
           len(S0) * len(S1) * 3 // 4)


def test_kernel_tiled(benchmark):
    def run():
        return tiled_local_sweep(S0.codes, S1.codes, PAPER_SCHEME,
                                 band_rows=256, strip_cols=256).best
    benchmark.pedantic(run, rounds=3, iterations=1)
    record(benchmark, "tiled sweep (buses / z-align)", len(S0) * len(S1))


def test_kernel_dbscan(benchmark):
    query = random_dna(256, RNG, "q")
    db = [random_dna(256, RNG, f"s{k}") for k in range(64)]

    def run():
        return scan_database(query, db, PAPER_SCHEME).best.score
    result = benchmark.pedantic(run, rounds=3, iterations=1)
    record(benchmark, "database scan (batch)", 256 * 256 * 64)


def test_kernel_wavefront(benchmark):
    """Wavefront tile-grid sweep: MCUPS at 1/2/4/8 workers vs serial.

    Writes ``benchmarks/out/BENCH_wavefront.json`` with honest wall-clock
    numbers plus the host's cpu_count — on a single-core container every
    pool size pays IPC overhead without gaining concurrency, so speedups
    there are expected to sit below 1.0.
    """
    cells = len(S0) * len(S1)
    start = time.perf_counter()
    serial_best = RowSweeper(S0.codes, S1.codes, PAPER_SCHEME, local=True,
                             track_best=True).run().best
    serial_seconds = time.perf_counter() - start

    def pooled(workers: int) -> tuple[int, float]:
        start = time.perf_counter()
        with WavefrontExecutor(workers) as executor:
            sweep = make_sweeper(S0.codes, S1.codes, PAPER_SCHEME,
                                 executor=executor, local=True,
                                 track_best=True)
            sweep.run()
            best = sweep.best
        return best, time.perf_counter() - start

    ladder: dict[str, dict[str, float]] = {}
    for workers in (1, 2, 4, 8):
        best, seconds = pooled(workers)
        assert best == serial_best  # the bit-identity contract
        ladder[str(workers)] = {
            "seconds": seconds,
            "mcups": cells / seconds / 1e6,
            "speedup_vs_serial": serial_seconds / seconds,
        }

    benchmark.pedantic(lambda: pooled(2)[0], rounds=1, iterations=1)
    record(benchmark, "wavefront sweep, 2 workers", cells)

    OUT_DIR.mkdir(exist_ok=True)
    payload = {
        "kernel": "wavefront",
        "matrix": [len(S0), len(S1)],
        "cells": cells,
        "cpu_count": os.cpu_count(),
        "serial": {"seconds": serial_seconds,
                   "mcups": cells / serial_seconds / 1e6},
        "workers": ladder,
    }
    (OUT_DIR / "BENCH_wavefront.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n")


def test_kernel_report(benchmark):
    # Runs last (alphabetical ordering is avoided by explicit dependency
    # on RATES being filled by the sweeps above within the same session).
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = ["Kernel throughput (MCUPS, this machine)", ""]
    for name, rate in sorted(RATES.items(), key=lambda kv: -kv[1]):
        lines.append(f"  {name:<36} {rate:>8.1f}")
    if RATES:
        assert max(RATES.values()) > 10  # sanity: vectorization is alive
    if os.environ.get("REPRO_BENCH_METRICS"):
        lines += ["", "metrics snapshot:"]
        for name, value in sorted(METRICS.snapshot().items()):
            lines.append(f"  {name}: {value}")
    emit("kernel_throughput", lines)
