"""Ablation — the flush-interval law (Section IV-B).

Verifies, over a grid of matrix sizes and SRA budgets, that Stage 1's
saved rows (a) never exceed the byte budget, (b) sit at multiples of the
block height, and (c) follow the paper's interval law
``ceil(8mn / (alpha*T*|SRA|))``.  Benchmarks the law itself over the grid.
"""

from __future__ import annotations

import math

from repro.constants import SPECIAL_CELL_BYTES
from repro.storage import flush_interval_blocks, special_row_positions

from benchmarks.conftest import emit

SIZES = [(1 << k, 1 << k) for k in range(10, 17)]
BUDGET_ROWS = [1, 2, 8, 64]
BLOCK_ROWS = 256


def test_ablation_flush_interval_law(benchmark):
    def sweep():
        count = 0
        for m, n in SIZES:
            for rows in BUDGET_ROWS:
                budget = rows * SPECIAL_CELL_BYTES * (n + 1)
                positions = special_row_positions(m, n, BLOCK_ROWS, budget)
                count += len(positions)
        return count

    benchmark.pedantic(sweep, rounds=3, iterations=1)
    lines = [
        "Ablation — flush-interval law",
        "",
        f"{'m = n':>8} {'budget rows':>12} {'interval':>9} {'saved':>6} "
        f"{'bytes used':>12} {'budget':>12}",
    ]
    for m, n in SIZES:
        for rows in BUDGET_ROWS:
            budget = rows * SPECIAL_CELL_BYTES * (n + 1)
            interval = flush_interval_blocks(m, n, BLOCK_ROWS, budget)
            positions = special_row_positions(m, n, BLOCK_ROWS, budget)
            used = len(positions) * SPECIAL_CELL_BYTES * (n + 1)
            lines.append(f"{m:>8} {rows:>12} {interval:>9} "
                         f"{len(positions):>6} {used:>12,} {budget:>12,}")
            assert used <= budget
            assert all(p % BLOCK_ROWS == 0 for p in positions)
            want = max(1, math.ceil(
                SPECIAL_CELL_BYTES * m * n / (BLOCK_ROWS * budget)))
            assert interval == want
            # The law is tight: the positions fill most of the budget when
            # the matrix is tall enough to produce that many candidates.
            if m // (BLOCK_ROWS * interval) >= rows:
                assert len(positions) >= max(1, rows - 1)
    emit("ablation_flush_interval", lines)
