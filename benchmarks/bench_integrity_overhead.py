"""Integrity-framing overhead — checksummed artifact I/O versus raw.

Round-trips a batch of special-line-sized payloads through the
integrity codec (CRC32 + SHA-256 framing, atomic write+rename, verified
read) and through bare ``open()`` calls, then does the same for sealed
versus plain journal appends.  The table reports MB/s both ways and the
relative cost — the price of making every artifact corruption
detectable at read time.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.integrity import codec

from benchmarks.conftest import emit

#: Payloads sized like real special lines (2 int32 per cell, n+1 cells).
LINE_CELLS = 64 * 1024
LINE_COUNT = 48
JOURNAL_RECORDS = 2000


def _payloads() -> list[bytes]:
    rng = np.random.default_rng(7)
    return [rng.integers(0, 2**31, 2 * LINE_CELLS, dtype=np.int32).tobytes()
            for _ in range(LINE_COUNT)]


def _raw_round_trip(directory, payloads) -> float:
    tick = time.perf_counter()
    for index, payload in enumerate(payloads):
        path = os.path.join(directory, f"{index}.raw")
        with open(path, "wb") as handle:
            handle.write(payload)
        with open(path, "rb") as handle:
            assert len(handle.read()) == len(payload)
    return time.perf_counter() - tick


def _framed_round_trip(directory, payloads) -> float:
    tick = time.perf_counter()
    for index, payload in enumerate(payloads):
        path = os.path.join(directory, f"{index}.bin")
        codec.write_artifact(path, payload, codec.KIND_SPECIAL_LINE)
        assert len(codec.read_artifact(path, codec.KIND_SPECIAL_LINE)) == \
            len(payload)
    return time.perf_counter() - tick


def _plain_appends(path) -> float:
    tick = time.perf_counter()
    for index in range(JOURNAL_RECORDS):
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps({"event": "started", "n": index}) + "\n")
    return time.perf_counter() - tick


def _sealed_appends(path) -> float:
    tick = time.perf_counter()
    for index in range(JOURNAL_RECORDS):
        codec.append_journal_record(path, {"event": "started", "n": index})
    return time.perf_counter() - tick


def test_integrity_overhead(tmp_path):
    payloads = _payloads()
    total_mb = sum(len(p) for p in payloads) / 2**20

    for directory in ("raw", "framed"):
        (tmp_path / directory).mkdir()
    raw_s = _raw_round_trip(tmp_path / "raw", payloads)
    framed_s = _framed_round_trip(tmp_path / "framed", payloads)

    plain_s = _plain_appends(tmp_path / "plain.jsonl")
    sealed_s = _sealed_appends(tmp_path / "sealed.jsonl")

    lines = [
        f"Integrity framing overhead — {LINE_COUNT} payloads x "
        f"{LINE_CELLS} cells ({total_mb:.0f} MB), "
        f"{JOURNAL_RECORDS} journal appends",
        "",
        f"{'artifact path':>22} {'raw':>10} {'framed':>10} {'cost':>7}",
        f"{'line write+read MB/s':>22} {total_mb / raw_s:>10.0f} "
        f"{total_mb / framed_s:>10.0f} {framed_s / raw_s:>6.2f}x",
        f"{'journal appends/s':>22} {JOURNAL_RECORDS / plain_s:>10.0f} "
        f"{JOURNAL_RECORDS / sealed_s:>10.0f} {sealed_s / plain_s:>6.2f}x",
        "",
        "framed = CRC32 + SHA-256 frame, atomic write+rename, verified "
        "read;",
        "sealed = per-record CRC + torn-tail healing.  The paper's flush "
        "model charges ~13 s/GB for SRA traffic, so checksum cost stays "
        "in the I/O noise at scale.",
    ]
    emit("integrity_overhead", lines)
