"""Figure 12 — the chromosome alignment dotplot.

Runs the flagship comparison, renders the alignment path as both the
ASCII grid and the SVG polyline, and checks the figure's structure: the
path is a monotone near-diagonal band that starts after S1's unrelated
prefix (the paper's plot starts at ~13.8M on the human axis).
"""

from __future__ import annotations

from repro.sequences import get_entry
from repro.viz import ascii_dotplot, svg_dotplot

from benchmarks.conftest import OUT_DIR, emit, run_entry


def test_fig12_dotplot(benchmark, scale):
    entry = get_entry("32799Kx46944K")
    s0, s1, config, result = run_entry(entry, scale)
    alignment = result.alignment

    plot = benchmark.pedantic(
        ascii_dotplot, args=(alignment, len(s0), len(s1)),
        kwargs={"size": 48}, rounds=3, iterations=1)
    svg = svg_dotplot(alignment, len(s0), len(s1))
    (OUT_DIR / "fig12_dotplot.svg").write_text(svg)

    rows = plot.splitlines()[1:]
    starred = [r for r, line in enumerate(rows) if "*" in line]
    # The path must be present and span most of the S0 axis.
    assert starred and (starred[-1] - starred[0]) > 0.7 * len(rows)
    # The unrelated S1 prefix is skipped: the first starred row begins
    # right of the left margin.
    first_cols = [line.index("*") for line in rows if "*" in line]
    assert first_cols[0] > 2, "alignment must start after the S1 prefix"
    # Monotonicity: the leftmost star column never moves left as we go down.
    assert all(b >= a - 1 for a, b in zip(first_cols, first_cols[1:]))
    lines = [
        f"Figure 12 analogue — alignment dotplot ({entry.key}, "
        f"scale 1/{scale})",
        "",
        plot,
        "",
        f"SVG written to {OUT_DIR / 'fig12_dotplot.svg'}",
        f"alignment: start {alignment.start} end {alignment.end} "
        f"(paper: start (0, 13,841,680) — S1 prefix skipped)",
    ]
    emit("fig12_dotplot", lines)
