"""Ablation — balanced vs middle-row splitting (the paper's Figure 10).

Stage 4 on a skewed chain: with balanced splitting the largest dimension
halves every round, so fewer iterations reach the maximum partition size
than with the original MM middle-row rule.  Both must refine to the same
final score.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core import (
    CrosspointChain,
    CUDAlign,
    run_stage4,
)
from repro.sequences.synth import MutationProfile, homologous_pair

from benchmarks.conftest import emit, pipeline_config


def test_ablation_balanced_splitting(benchmark):
    # A gap-heavy pair yields skewed partitions (the regime Figure 10
    # targets: narrow partitions that keep their disproportion).
    rng = np.random.default_rng(10)
    s0, s1 = homologous_pair(
        3000, rng, profile=MutationProfile(substitution=0.02, insertion=0.01,
                                           deletion=0.01, indel_mean_len=30))
    config = pipeline_config(len(s1), sra_rows=0, max_partition_size=12)
    base = CUDAlign(config).run(s0, s1, visualize=False)
    chain = CrosspointChain(base.stage2.crosspoints)

    def run_both():
        balanced = run_stage4(s0, s1, config, chain)
        middle = run_stage4(
            s0, s1, dataclasses.replace(config, stage4_balanced=False), chain)
        return balanced, middle

    balanced, middle = benchmark.pedantic(run_both, rounds=1, iterations=1)
    lines = [
        "Ablation — balanced splitting (Figure 10)",
        "",
        f"{'mode':<12} {'iterations':>11} {'cells':>12} {'crosspoints':>12}",
        f"{'balanced':<12} {len(balanced.iterations):>11} "
        f"{balanced.cells:>12,} {len(balanced.crosspoints):>12,}",
        f"{'middle-row':<12} {len(middle.iterations):>11} "
        f"{middle.cells:>12,} {len(middle.crosspoints):>12,}",
    ]
    assert CrosspointChain(balanced.crosspoints).end.score == \
        CrosspointChain(middle.crosspoints).end.score
    assert len(balanced.iterations) <= len(middle.iterations)
    lines += ["", "paper (Figure 10): balanced splitting reaches the maximum "
              "partition size in fewer splitting steps"]
    emit("ablation_balanced_split", lines)
