"""Table II — the sequence catalog.

Regenerates the paper's catalog as scaled synthetic pairs and verifies
the structural properties the downstream experiments rely on: size ratios
within a few percent of the paper's, determinism, and the regime label of
every entry.  The benchmark times the generation of the largest pair.
"""

from __future__ import annotations

from repro.sequences import CATALOG, get_entry

from benchmarks.conftest import bench_scale, emit


def test_table2_catalog(benchmark, scale):
    entry = get_entry("32799Kx46944K")
    benchmark.pedantic(entry.build, kwargs={"scale": scale, "seed": 0},
                       rounds=3, iterations=1)
    lines = [
        f"Table II — sequence catalog (synthetic, scale 1/{scale})",
        "",
        f"{'key':<16} {'paper size':>24} {'scaled size':>17} "
        f"{'ratio':>6}  regime",
    ]
    for item in CATALOG:
        s0, s1 = item.build(scale=scale, seed=0)
        paper_ratio = item.paper_size0 / item.paper_size1
        got_ratio = len(s0) / len(s1)
        lines.append(
            f"{item.key:<16} {item.paper_size0:>11,} x{item.paper_size1:>11,} "
            f"{len(s0):>7,} x{len(s1):>8,} {got_ratio:>6.2f}  {item.regime}")
        # Size ratios track the paper's unless the floor clamps them.
        if min(len(s0), len(s1)) > 400:
            assert abs(got_ratio - paper_ratio) / paper_ratio < 0.25
        # Determinism: rebuilding yields identical sequences.
        r0, r1 = item.build(scale=scale, seed=0)
        assert str(r0[:64]) == str(s0[:64]) and str(r1[:64]) == str(s1[:64])
    emit("table2_catalog", lines)
