"""Table IV — Stage 1 runtimes and MCUPS, with and without flushing.

Two halves, matching the paper's columns:

* **measured** — the real Stage-1 sweep on the scaled catalog, with the
  SRA enabled and disabled; the flush overhead must stay small (the paper
  reports ~1% for long sequences; our disk is a RAM-backed tmpfs-equivalent
  so we assert a loose bound);
* **modeled** — the calibrated GTX 285 model evaluated at the paper's
  sizes, which must land within a few percent of every row of Table IV.
"""

from __future__ import annotations

import pytest

from repro.core import run_stage1
from repro.gpusim import GTX_285, KernelGrid, sweep_cost
from repro.sequences import CATALOG
from repro.storage import SpecialLineStore

from benchmarks.conftest import emit, pipeline_config, run_entry

#: (key, no-flush seconds, no-flush MCUPS, SRA, flush seconds) from Table IV.
PAPER_TABLE4 = {
    "162Kx172K": (1.4, 19_769, "5M", 1.5),
    "543Kx536K": (12.9, 22_545, "50M", 13.6),
    "1044Kx1073K": (48.3, 23_205, "250M", 51.6),
    "3147Kx3283K": (436, 23_706, "1G", 448),
    "5227Kx5229K": (1_147, 23_822, "3G", 1_185),
    "7146Kx5227K": (1_568, 23_816, "3G", 1_604),
    "23012Kx24544K": (23_620, 23_911, "10G", 23_750),
    "32799Kx46944K": (64_507, 23_869, "50G", 65_153),
}

SRA_BYTES = {"5M": 5e6, "50M": 5e7, "250M": 2.5e8, "1G": 1e9, "3G": 3e9,
             "10G": 1e10, "50G": 5e10}


def test_table4_modeled_paper_scale(benchmark):
    grid = KernelGrid(240, 64, 4)

    def evaluate():
        rows = {}
        for entry in CATALOG:
            plain = sweep_cost(entry.paper_size0, entry.paper_size1, grid,
                               GTX_285)
            flushed = sweep_cost(entry.paper_size0, entry.paper_size1, grid,
                                 GTX_285,
                                 flushed_bytes=int(SRA_BYTES[
                                     PAPER_TABLE4[entry.key][2]]))
            rows[entry.key] = (plain, flushed)
        return rows

    rows = benchmark.pedantic(evaluate, rounds=3, iterations=1)
    lines = [
        "Table IV (modeled at paper scale) — Stage 1 with/without flush",
        "",
        f"{'comparison':<16} {'paper s':>9} {'model s':>9} {'err':>6} "
        f"{'paper MCUPS':>12} {'model MCUPS':>12} {'flush paper':>12} "
        f"{'flush model':>12}",
    ]
    for entry in CATALOG:
        plain, flushed = rows[entry.key]
        p_time, p_mcups, sra, p_flush = PAPER_TABLE4[entry.key]
        err = abs(plain.seconds - p_time) / p_time
        lines.append(
            f"{entry.key:<16} {p_time:>9,.1f} {plain.seconds:>9,.1f} "
            f"{100 * err:>5.1f}% {p_mcups:>12,} {plain.mcups:>12,.0f} "
            f"{p_flush:>12,.1f} {flushed.seconds:>12,.1f}")
        assert err < 0.08, entry.key
        # The flush overhead stays ~1-2% at every size, as in the paper.
        overhead = (flushed.seconds - plain.seconds) / plain.seconds
        assert overhead < 0.08, entry.key
    emit("table4_modeled", lines)


def test_table4_measured_scaled(benchmark, scale):
    lines = [
        f"Table IV (measured, scale 1/{scale}) — real Stage-1 sweeps",
        "",
        f"{'comparison':<16} {'no-flush s':>11} {'MCUPS':>8} "
        f"{'flush s':>9} {'MCUPS':>8} {'rows saved':>11}",
    ]

    def one_pair(entry):
        s0, s1 = entry.build(scale=scale, seed=0)
        config = pipeline_config(len(s1), sra_rows=8)
        off = run_stage1(s0, s1, config, SpecialLineStore(0))
        on = run_stage1(s0, s1, config, SpecialLineStore(config.sra_bytes))
        return off, on

    picked = [e for e in CATALOG if e.key in
              ("543Kx536K", "5227Kx5229K", "32799Kx46944K")]
    results = benchmark.pedantic(
        lambda: [one_pair(e) for e in picked], rounds=1, iterations=1)
    for entry, (off, on) in zip(picked, results):
        lines.append(
            f"{entry.key:<16} {off.wall_seconds:>11.3f} "
            f"{off.mcups_wall:>8.1f} {on.wall_seconds:>9.3f} "
            f"{on.mcups_wall:>8.1f} {len(on.special_rows):>11}")
        assert on.best_score == off.best_score
        assert on.special_rows and not off.special_rows
    emit("table4_measured", lines)
