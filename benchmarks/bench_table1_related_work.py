"""Table I — GPU Smith-Waterman related work.

Prints the paper's related-work table and appends a measured row for this
reproduction's CPU-vectorized kernel (the honest analogue of the GCUPS
column) plus the modeled GTX 285 rate the gpusim substrate is calibrated
to.  The benchmark times the Stage-1 kernel on a fixed 2K x 2K workload.
"""

from __future__ import annotations

import numpy as np

from repro.align.rowscan import RowSweeper
from repro.align.scoring import PAPER_SCHEME
from repro.baselines import GpuSWEntry, TABLE_I, format_table_i
from repro.gpusim import GTX_285, KernelGrid, sweep_cost
from repro.sequences.synth import random_dna

from benchmarks.conftest import emit


def _sweep(codes0, codes1):
    return RowSweeper(codes0, codes1, PAPER_SCHEME, local=True,
                      track_best=True).run().best


def test_table1_related_work(benchmark):
    rng = np.random.default_rng(1)
    s0 = random_dna(2048, rng)
    s1 = random_dna(2048, rng)
    benchmark.pedantic(_sweep, args=(s0.codes, s1.codes),
                       rounds=3, iterations=1)
    seconds = benchmark.stats.stats.mean
    measured_gcups = 2048 * 2048 / seconds / 1e9
    ours = GpuSWEntry("This repro", "(CPU sim)", True, 2**31 - 1,
                      round(measured_gcups, 2), "NumPy kernel")
    modeled = sweep_cost(32_799_110, 46_944_323, KernelGrid(240, 64, 4),
                         GTX_285)
    lines = [
        "Table I — GPU Smith-Waterman papers (paper data + this repro)",
        "",
        format_table_i(ours),
        "",
        f"modeled GTX 285 stage-1 rate at chromosome scale: "
        f"{modeled.gcups:.1f} GCUPS (paper: 23.9)",
    ]
    emit("table1_related_work", lines)
    assert len(TABLE_I) == 8
    assert measured_gcups > 0.01  # the CPU kernel must sustain > 10 MCUPS
