"""Ablation — goal-based matching + orthogonal execution in Stage 2.

The paper's Section IV-C argument: Stage 2's processed area is roughly
(flush interval) x n because each band's column strips stop at the first
goal hit.  This benchmark measures the processed-cell ratio of Stage 2
against the full matrix as the SRA grows, and verifies the strip width
(the granularity of early stopping) changes work but never the result.
"""

from __future__ import annotations

import dataclasses

from repro.core import CUDAlign
from repro.sequences import get_entry

from benchmarks.conftest import emit, pipeline_config


def test_ablation_goal_matching(benchmark, scale):
    entry = get_entry("5227Kx5229K")  # near-identical: longest alignment
    s0, s1 = entry.build(scale=scale, seed=0)
    runs = {}

    def run_all():
        for rows in (1, 4, 16):
            config = pipeline_config(len(s1), sra_rows=rows)
            runs[rows] = CUDAlign(config).run(s0, s1, visualize=False)
        return len(runs)

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    matrix = len(s0) * len(s1)
    lines = [
        f"Ablation — goal-based matching / orthogonal execution "
        f"({entry.key}, scale 1/{scale})",
        "",
        f"{'SRA rows':>8} {'stage2 cells':>13} {'of matrix':>10} "
        f"{'bands':>6}",
    ]
    fractions = []
    for rows, result in runs.items():
        frac = result.stage2.cells / matrix
        fractions.append(frac)
        lines.append(f"{rows:>8} {result.stage2.cells:>13,} "
                     f"{100 * frac:>9.1f}% {len(result.stage2.bands):>6}")
        assert result.best_score == runs[1].best_score
    # More special rows => smaller processed fraction (Section IV-C).
    assert fractions[-1] < fractions[0]
    # Even with one special row the goal-based stop keeps stage 2 below a
    # full-matrix recomputation.
    assert fractions[0] < 1.1

    # Strip width sweep: granularity changes work, never results.
    config = pipeline_config(len(s1), sra_rows=8)
    outcomes = set()
    for strip in (8, 64, 512):
        result = CUDAlign(dataclasses.replace(config, stage2_strip=strip)
                          ).run(s0, s1, visualize=False)
        outcomes.add((result.best_score,
                      tuple(p.j for p in result.stage2.crosspoints)))
    assert len({score for score, _ in outcomes}) == 1
    lines += ["", "strip-width sweep (8/64/512): identical crosspoints, "
              "identical score"]
    emit("ablation_goal_match", lines)
