"""Extension — multi-GPU projection (the paper's future work, Section VI:
"extend the tests to even more powerful GPUs, including systems with dual
cards").

Real sliced execution at small scale (bit-identical scores), and the
modeled Stage-1 runtimes of the chromosome comparison on 1/2/4 GTX 285
cards, plus the Stage-4-on-GPU estimate the paper sketches.
"""

from __future__ import annotations

import numpy as np

from repro.align import reference
from repro.align.scoring import PAPER_SCHEME
from repro.gpusim import (
    GTX_285,
    KernelGrid,
    MultiGpuSystem,
    multi_gpu_sweep_cost,
    multi_gpu_sweep_score,
    stage4_gpu_estimate,
)
from repro.gpusim.perf import host_seconds
from repro.gpusim.device import PENTIUM_DUALCORE
from repro.sequences.synth import homologous_pair

from benchmarks.conftest import emit

GRID = KernelGrid(240, 64, 4)


def test_ext_multigpu(benchmark):
    rng = np.random.default_rng(21)
    s0, s1 = homologous_pair(1200, rng)
    system = MultiGpuSystem(GTX_285, 2)
    score = benchmark.pedantic(
        multi_gpu_sweep_score, args=(s0, s1, PAPER_SCHEME, system),
        kwargs={"band_rows": 64}, rounds=2, iterations=1)
    assert score == reference.sw_score(s0, s1, PAPER_SCHEME)

    m, n = 32_799_110, 46_944_323
    lines = [
        "Extension — multi-GPU Stage 1 projection (33M x 47M, GTX 285)",
        "",
        f"{'cards':>6} {'seconds':>10} {'hours':>7} {'speedup':>8} "
        f"{'efficiency':>11}",
    ]
    for cards in (1, 2, 4):
        cost = multi_gpu_sweep_cost(m, n, GRID, MultiGpuSystem(GTX_285, cards))
        lines.append(f"{cards:>6} {cost.seconds:>10,.0f} "
                     f"{cost.seconds / 3600:>7.2f} "
                     f"{cost.speedup_vs_one:>8.2f} {cost.efficiency:>10.1%}")
    # Stage 4 on GPU (future work): the chromosome run's Stage-4 work at
    # SRA=50GB was ~376 s on the host with orthogonal execution.
    cells4 = int(376 * PENTIUM_DUALCORE.cores
                 * PENTIUM_DUALCORE.mcups_per_core * 1e6)
    cpu = host_seconds(cells4, PENTIUM_DUALCORE)
    gpu = stage4_gpu_estimate(cells4, partitions=12_986, grid=GRID,
                              device=GTX_285)
    lines += [
        "",
        f"Stage 4 migration estimate (cells from the paper's 376 s run):",
        f"  host (2 cores): {cpu:,.0f} s    GPU (block per partition): "
        f"{gpu:,.1f} s    projected gain: {cpu / gpu:,.0f}x",
    ]
    assert gpu < cpu

    # "More powerful GPUs" (Section VI): the next-generation projection.
    from repro.gpusim import GTX_560_TI, sweep_cost
    newer = sweep_cost(m, n, KernelGrid(144, 128, 4), GTX_560_TI)
    older = sweep_cost(m, n, GRID, GTX_285)
    lines += [
        "",
        f"next-generation board ({GTX_560_TI.name}):",
        f"  stage 1: {newer.seconds:,.0f} s at {newer.gcups:.1f} GCUPS "
        f"(vs {older.seconds:,.0f} s / {older.gcups:.1f} GCUPS on GTX 285, "
        f"{older.seconds / newer.seconds:.1f}x)",
    ]
    assert newer.seconds < older.seconds
    emit("ext_multigpu", lines)
