"""Extension — database-scan regime (the problem Table I's other systems
solve).

One query against a batch of subjects, scored with the inter-task
vectorized kernel (one SIMD lane per subject — the CUDASW++ execution
model).  Shows why those systems cap query sizes: their throughput comes
from batch width, not from scaling one pair.
"""

from __future__ import annotations

import numpy as np

from repro.align.scoring import PAPER_SCHEME
from repro.baselines import scan_database
from repro.sequences.synth import MutationProfile, mutate, random_dna

from benchmarks.conftest import emit


def test_ext_dbscan(benchmark):
    rng = np.random.default_rng(33)
    query = random_dna(360, rng, "query")
    db = [random_dna(int(rng.integers(200, 400)), rng, f"subj{k}")
          for k in range(256)]
    planted = mutate(query, MutationProfile(substitution=0.06, insertion=0.01,
                                            deletion=0.01), rng, "planted")
    db[100] = planted

    result = benchmark.pedantic(scan_database,
                                args=(query, db, PAPER_SCHEME),
                                kwargs={"top": 5}, rounds=3, iterations=1)
    assert result.best.name == "planted"
    lines = [
        "Extension — database scan (inter-task parallel batch kernel)",
        "",
        f"query {len(query)} bp vs {len(db)} subjects "
        f"({result.cells:,} cells)",
        f"throughput: {result.mcups:,.0f} MCUPS over the whole batch.",
        "On SIMT hardware one lane per subject is what turns this regime",
        "into the double-digit GCUPS of Table I; in NumPy the same layout",
        "is merely memory-bound — the point here is the *regime*: short",
        "queries, wide batches, scores only, no huge-pair capability.",
        "",
        "top hits:",
    ]
    for hit in result.hits:
        lines.append(f"  {hit.name:<10} score {hit.score}")
    emit("ext_dbscan", lines)
